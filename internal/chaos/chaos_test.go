package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"onchip/internal/advisor"
	"onchip/internal/experiments"
	"onchip/internal/faultinject"
	"onchip/internal/tracecache"
)

// fakeRun is a deterministic synthetic runner: the answer depends only
// on the request, and the latency only on the signature and a seed, so
// storms against it are reproducible.
func fakeRun(delayPerRun time.Duration) advisor.RunFunc {
	return func(ctx context.Context, req experiments.AdviseRequest, useCache bool) (*experiments.AdviseResponse, error) {
		select {
		case <-time.After(delayPerRun):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return &experiments.AdviseResponse{
			Signature: req.Signature(),
			Request:   req,
			Feasible:  req.Refs,
			Allocations: []experiments.RankedAllocation{
				{Rank: 1, TLB: "t", ICache: "i", DCache: "d", AreaRBE: req.BudgetRBE, CPI: float64(req.Refs)},
			},
		}, nil
	}
}

// directFor marshals exactly the bytes the advisor serves for a
// runner, making the oracle independent of the HTTP path.
func directFor(run advisor.RunFunc) func(experiments.AdviseRequest) ([]byte, error) {
	return func(req experiments.AdviseRequest) ([]byte, error) {
		resp, err := run(context.Background(), req, false)
		if err != nil {
			return nil, err
		}
		b, err := json.Marshal(resp)
		if err != nil {
			return nil, err
		}
		return append(b, '\n'), nil
	}
}

func requestPool(n int) []experiments.AdviseRequest {
	reqs := make([]experiments.AdviseRequest, n)
	for i := range reqs {
		reqs[i] = experiments.AdviseRequest{Workloads: []string{"mab"}, Refs: 2000 + i, Top: 3}
	}
	return reqs
}

// TestOverloadStormBoundedAndCorrect drives far more concurrency than
// the pool admits: overload must resolve as clean 429 sheds while
// every 200 stays byte-identical to the oracle and p99 stays bounded
// by (queue depth + 1) computations, not by the backlog.
func TestOverloadStormBoundedAndCorrect(t *testing.T) {
	run := fakeRun(20 * time.Millisecond)
	srv := advisor.New(advisor.Config{Workers: 2, QueueDepth: 2, Run: run})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := Run(Config{
		URL:               ts.URL,
		Clients:           8,
		RequestsPerClient: 10,
		Seed:              42,
		Requests:          requestPool(16),
		Direct:            directFor(run),
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("storm violations: %v", v)
	}
	if rep.Total != 80 {
		t.Fatalf("total = %d, want 80", rep.Total)
	}
	if rep.OK == 0 {
		t.Fatal("storm produced no successful responses")
	}
	if rep.Shed == 0 {
		t.Fatal("8 clients against 2 workers + depth-2 queue should shed, got 0")
	}
	if got := rep.OK + rep.Shed + rep.Unavailable + rep.Timeouts + rep.ServerErrors + rep.BadRequests + rep.OtherStatus + rep.TransportErrors; got != rep.Total {
		t.Fatalf("status accounting: %d classified of %d", got, rep.Total)
	}
	// Shed requests return immediately and admitted ones wait at most
	// (queue + self) computations; anything near a second means the
	// admission bound leaked.
	if p99 := time.Duration(rep.P99Micros) * time.Microsecond; p99 > 2*time.Second {
		t.Fatalf("p99 = %v; overload latency must stay bounded", p99)
	}
}

// TestDrainMidStormDropsNothing: a drain in the middle of a storm
// must finish every admitted request (byte-correct), refuse the rest
// cleanly, and leave no pending work behind.
func TestDrainMidStormDropsNothing(t *testing.T) {
	run := fakeRun(15 * time.Millisecond)
	srv := advisor.New(advisor.Config{Workers: 2, QueueDepth: 4, DrainTimeout: 10 * time.Second, Run: run})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	var rep *Report
	var runErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep, runErr = Run(Config{
			URL:               ts.URL,
			Clients:           6,
			RequestsPerClient: 12,
			Seed:              7,
			Requests:          requestPool(8),
			Direct:            directFor(run),
			ThinkTime:         2 * time.Millisecond,
		})
	}()
	time.Sleep(60 * time.Millisecond) // mid-storm
	if err := srv.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if runErr != nil {
		t.Fatal(runErr)
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("storm violations across drain: %v", v)
	}
	if rep.OK == 0 {
		t.Fatal("no request completed before the drain")
	}
	if rep.Unavailable == 0 {
		t.Fatal("no request observed the draining 503")
	}
	if n := len(srv.Pending()); n != 0 {
		t.Fatalf("drain left %d admitted request(s) unfinished", n)
	}
}

// realPipelinePool keeps the real-pipeline storms cheap: tiny
// reference counts over one workload, three distinct signatures.
func realPipelinePool() []experiments.AdviseRequest {
	var reqs []experiments.AdviseRequest
	for i := 0; i < 3; i++ {
		reqs = append(reqs, experiments.AdviseRequest{
			Workloads: []string{"mab"},
			Refs:      1000 + 500*i,
			Top:       5,
		})
	}
	return reqs
}

func realDirect(req experiments.AdviseRequest) ([]byte, error) {
	resp, err := experiments.Advise(req, experiments.Options{})
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// TestRealPipelineWithFaultsIsByteIdentical is the end-to-end
// correctness gate: the advisor runs the real experiments pipeline
// over a trace cache whose reads are fault-injected (transient errors
// and bit flips), and every 200 must still be byte-identical to a
// clean, cache-less direct run -- corruption may cost time (fallback
// regeneration, breaker trips), never answers.
func TestRealPipelineWithFaultsIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real sweep pipeline")
	}
	tc, err := tracecache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{Seed: 11, IOErrProb: 0.02, CorruptProb: 0.02})
	tc.SetReadWrapper(inj.Reader)

	srv := advisor.New(advisor.Config{
		Workers:          2,
		QueueDepth:       8,
		TraceCache:       tc,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
	})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := Run(Config{
		URL:               ts.URL,
		Clients:           4,
		RequestsPerClient: 4,
		Seed:              1,
		Requests:          realPipelinePool(),
		Direct:            realDirect,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("violations with fault-injected trace cache: %v", v)
	}
	if rep.OK != rep.Total {
		t.Fatalf("ok = %d of %d; injected read faults must degrade to regeneration, not errors", rep.OK, rep.Total)
	}
	if rep.CacheHits+rep.Dedups == 0 {
		t.Fatal("storm of 16 requests over 3 signatures should hit the result cache or dedup")
	}
}

// TestBenchAdvisorArtifact runs the bench storm against the real
// pipeline and records BENCH_advisor.json when BENCH_ADVISOR_JSON
// names the output (the `make bench-advisor` entry point). The chaos
// gate applies: any correctness violation fails the run.
func TestBenchAdvisorArtifact(t *testing.T) {
	out := os.Getenv("BENCH_ADVISOR_JSON")
	if out == "" {
		t.Skip("set BENCH_ADVISOR_JSON to record the advisor bench artifact")
	}
	tc, err := tracecache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := advisor.New(advisor.Config{Workers: 4, QueueDepth: 8, TraceCache: tc})
	defer srv.Drain()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep, err := Run(Config{
		URL:               ts.URL,
		Clients:           8,
		RequestsPerClient: 8,
		Seed:              2026,
		Requests:          realPipelinePool(),
		Direct:            realDirect,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violations(); len(v) != 0 {
		t.Fatalf("bench storm violations: %v", v)
	}
	if err := rep.WriteJSON(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("advisor bench: %d req (%d ok, %d shed) p50=%dus p99=%dus %.1f req/s shed=%.2f cachehit=%.2f -> %s",
		rep.Total, rep.OK, rep.Shed, rep.P50Micros, rep.P99Micros, rep.ReqPerSec, rep.ShedRate, rep.CacheHitRate, out)
	fmt.Println("BENCH_advisor written:", out)
}
