package tlb

import (
	"math/rand"
	"testing"

	"onchip/internal/vm"
)

func benchTranslate(b *testing.B, cfg Config) {
	m := NewManaged(cfg, DefaultCosts())
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint32, 1<<14)
	for i := range addrs {
		addrs[i] = vm.UserTextBase + uint32(rng.Intn(200))*vm.PageSize
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Translate(addrs[i&(len(addrs)-1)], 1)
	}
}

func BenchmarkTranslateR2000(b *testing.B)   { benchTranslate(b, R2000()) }
func BenchmarkTranslate512x8(b *testing.B)   { benchTranslate(b, saCfg(512, 8, LRU)) }
func BenchmarkTranslate512FIFO(b *testing.B) { benchTranslate(b, saCfg(512, 8, FIFO)) }
