package tlb

import (
	"testing"

	"onchip/internal/vm"
)

func newManaged(entries int) *Managed {
	return NewManaged(faCfg(entries), DefaultCosts())
}

func TestUnmappedSegmentsBypassTLB(t *testing.T) {
	m := newManaged(64)
	if c := m.Translate(0x80001000, 0); c != 0 {
		t.Errorf("kseg0 cost = %d, want 0", c)
	}
	if c := m.Translate(0xa0001000, 0); c != 0 {
		t.Errorf("kseg1 cost = %d, want 0", c)
	}
	if m.TLB().Stats().Probes != 0 {
		t.Error("unmapped references must not probe the TLB")
	}
}

func TestUserMissChainsToPageTable(t *testing.T) {
	m := newManaged(64)
	costs := m.Costs()
	// First user touch: user refill + nested kernel miss on the PTE
	// page + two first-touch (page fault) charges (data page and
	// page-table page).
	c := m.Translate(vm.UserTextBase, 1)
	want := costs.UserMissCycles + costs.KernelMissCycles
	if c != want {
		t.Errorf("first-touch user miss cost = %d, want %d", c, want)
	}
	// Same page again: hit, free.
	if c := m.Translate(vm.UserTextBase, 1); c != 0 {
		t.Errorf("hit cost = %d, want 0", c)
	}
	// A neighboring page shares the PTE page: user refill + page fault
	// only, no nested kernel miss.
	c = m.Translate(vm.UserTextBase+vm.PageSize, 1)
	want = costs.UserMissCycles
	if c != want {
		t.Errorf("neighbor page miss cost = %d, want %d", c, want)
	}
}

func TestKseg2MissCost(t *testing.T) {
	m := newManaged(64)
	costs := m.Costs()
	c := m.Translate(vm.Kseg2Base+0x5000, 0)
	if want := costs.KernelMissCycles; c != want {
		t.Errorf("kseg2 first miss cost = %d, want %d", c, want)
	}
	if c := m.Translate(vm.Kseg2Base+0x5000, 0); c != 0 {
		t.Errorf("kseg2 hit cost = %d, want 0", c)
	}
}

func TestServiceBreakdown(t *testing.T) {
	m := newManaged(64)
	m.Translate(vm.UserTextBase, 1)        // user + nested kernel + 2 other
	m.Translate(vm.UserTextBase+0x1000, 1) // user + other
	m.Translate(vm.Kseg2Base, 0)           // kernel + other
	s := m.Service()
	if s.Count[UserMiss] != 2 {
		t.Errorf("user misses = %d, want 2", s.Count[UserMiss])
	}
	if s.Count[KernelMiss] != 2 {
		t.Errorf("kernel misses = %d, want 2 (PTE page + kseg2)", s.Count[KernelMiss])
	}
	if s.Count[OtherMiss] != 4 {
		t.Errorf("other (first-touch) = %d, want 4", s.Count[OtherMiss])
	}
	costs := m.Costs()
	wantCycles := 2*costs.UserMissCycles + 2*costs.KernelMissCycles + 4*costs.OtherCycles
	if s.TotalCycles() != wantCycles {
		t.Errorf("total cycles = %d, want %d", s.TotalCycles(), wantCycles)
	}
	if s.TotalMisses() != 8 {
		t.Errorf("total misses = %d, want 8", s.TotalMisses())
	}
	if sec := s.Seconds(1e6); sec != float64(wantCycles)/1e6 {
		t.Errorf("Seconds = %g", sec)
	}
}

func TestRevisitedPageIsNotFirstTouch(t *testing.T) {
	// A page evicted from a tiny TLB and revisited misses again, but
	// must not be charged page-fault service twice.
	m := newManaged(2)
	a := uint32(vm.UserTextBase)
	b := uint32(vm.UserTextBase + 0x100000) // different PTE page region? same asid
	m.Translate(a, 1)
	// Fill the 2-entry TLB with unrelated pages to evict a.
	for i := uint32(0); i < 4; i++ {
		m.Translate(b+i*vm.PageSize, 1)
	}
	before := m.Service().Count[OtherMiss]
	m.Translate(a, 1) // miss again, but not first touch
	after := m.Service()
	if after.Count[OtherMiss] != before {
		t.Errorf("revisit charged page fault: other %d -> %d", before, after.Count[OtherMiss])
	}
	if after.Count[UserMiss] == 0 {
		t.Error("revisit should still be a user miss")
	}
}

func TestOnMissHook(t *testing.T) {
	m := newManaged(64)
	var events []MissEvent
	m.OnMiss(func(ev MissEvent) { events = append(events, ev) })
	m.Translate(vm.UserTextBase, 3)
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2 (PTE page + user page)", len(events))
	}
	// The nested PTE-page miss fires first (the handler touches the
	// page table before completing the user refill).
	if events[0].Class != KernelMiss || events[1].Class != UserMiss {
		t.Errorf("event classes = %v, %v", events[0].Class, events[1].Class)
	}
	if !events[0].FirstTouch || !events[1].FirstTouch {
		t.Error("both events should be first touches")
	}
	if events[1].Key != vm.KeyFor(vm.UserTextBase, 3) {
		t.Errorf("user event key = %+v", events[1].Key)
	}
}

func TestLargerTLBReducesServiceTime(t *testing.T) {
	run := func(entries int) uint64 {
		m := newManaged(entries)
		// Cycle through 96 user pages repeatedly: thrashes 64 entries
		// (plus PTE pages), fits easily in 512.
		for round := 0; round < 20; round++ {
			for p := uint32(0); p < 96; p++ {
				m.Translate(vm.UserTextBase+p*vm.PageSize, 1)
			}
		}
		return m.Service().TotalCycles()
	}
	small, big := run(64), run(512)
	if big >= small {
		t.Errorf("512-entry TLB service %d >= 64-entry %d", big, small)
	}
	// The large TLB should be compulsory-dominated: its misses are
	// almost all first touches.
	m := newManaged(512)
	for round := 0; round < 20; round++ {
		for p := uint32(0); p < 96; p++ {
			m.Translate(vm.UserTextBase+p*vm.PageSize, 1)
		}
	}
	s := m.Service()
	if s.Count[UserMiss] != 96 {
		t.Errorf("512-entry TLB user misses = %d, want 96 (compulsory only)", s.Count[UserMiss])
	}
}

func TestMissClassString(t *testing.T) {
	if UserMiss.String() != "user" || KernelMiss.String() != "kernel" || OtherMiss.String() != "other" {
		t.Error("class strings wrong")
	}
}

func TestManagedReset(t *testing.T) {
	m := newManaged(64)
	m.Translate(vm.UserTextBase, 1)
	m.Reset()
	if m.Service().TotalMisses() != 0 || m.TLB().Len() != 0 {
		t.Error("Reset did not clear state")
	}
	// After reset, the same page is a first touch again.
	c := m.Translate(vm.UserTextBase, 1)
	costs := m.Costs()
	if want := costs.UserMissCycles + costs.KernelMissCycles; c != want {
		t.Errorf("post-reset cost = %d, want %d", c, want)
	}
}
