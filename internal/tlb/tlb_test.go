package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"onchip/internal/area"
	"onchip/internal/vm"
)

func faCfg(entries int) Config {
	return Config{TLBConfig: area.TLBConfig{Entries: entries, Assoc: area.FullyAssociative}}
}

func saCfg(entries, assoc int, p Policy) Config {
	return Config{TLBConfig: area.TLBConfig{Entries: entries, Assoc: assoc}, Policy: p}
}

func key(vpn uint32, asid uint8) vm.TransKey { return vm.TransKey{VPN: vpn, ASID: asid} }

func TestProbeInsertBasics(t *testing.T) {
	tl := New(faCfg(4))
	k := key(0x400, 1)
	if tl.Probe(k) {
		t.Error("cold TLB must miss")
	}
	tl.Insert(k)
	if !tl.Probe(k) {
		t.Error("inserted key must hit")
	}
	s := tl.Stats()
	if s.Probes != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if tl.Len() != 1 {
		t.Errorf("Len = %d", tl.Len())
	}
}

func TestEvictionLRU(t *testing.T) {
	tl := New(saCfg(2, 2, LRU))
	// One set of two ways: keys with any VPN land in set 0.
	a, b, c := key(0, 1), key(2, 1), key(4, 1)
	tl.Insert(a)
	tl.Insert(b)
	tl.Probe(a) // a becomes MRU
	victim, evicted := tl.Insert(c)
	if !evicted || victim != b {
		t.Errorf("victim = %v (evicted=%v), want %v", victim, evicted, b)
	}
	if !tl.Contains(a) || tl.Contains(b) || !tl.Contains(c) {
		t.Error("wrong survivor set after LRU eviction")
	}
}

func TestEvictionFIFO(t *testing.T) {
	tl := New(saCfg(2, 2, FIFO))
	a, b, c := key(0, 1), key(2, 1), key(4, 1)
	tl.Insert(a)
	tl.Insert(b)
	tl.Probe(a) // FIFO ignores recency
	victim, evicted := tl.Insert(c)
	if !evicted || victim != a {
		t.Errorf("victim = %v (evicted=%v), want %v (insertion order)", victim, evicted, a)
	}
}

func TestInsertExistingRefreshes(t *testing.T) {
	tl := New(saCfg(2, 2, LRU))
	a, b, c := key(0, 1), key(2, 1), key(4, 1)
	tl.Insert(a)
	tl.Insert(b)
	if _, evicted := tl.Insert(a); evicted {
		t.Error("re-inserting a present key must not evict")
	}
	// a was refreshed, so b is now LRU.
	victim, _ := tl.Insert(c)
	if victim != b {
		t.Errorf("victim = %v, want %v", victim, b)
	}
	if tl.Len() != 2 {
		t.Errorf("Len = %d, want 2", tl.Len())
	}
}

func TestSetIndexing(t *testing.T) {
	tl := New(saCfg(4, 1, LRU)) // 4 direct-mapped sets
	// VPNs 0..3 map to distinct sets; all four fit simultaneously.
	for v := uint32(0); v < 4; v++ {
		tl.Insert(key(v, 1))
	}
	for v := uint32(0); v < 4; v++ {
		if !tl.Contains(key(v, 1)) {
			t.Errorf("VPN %d missing from direct-mapped TLB", v)
		}
	}
	// VPN 4 conflicts with VPN 0.
	tl.Insert(key(4, 1))
	if tl.Contains(key(0, 1)) {
		t.Error("direct-mapped conflict must evict")
	}
}

func TestASIDsDistinguished(t *testing.T) {
	tl := New(faCfg(4))
	tl.Insert(key(0x400, 1))
	if tl.Probe(key(0x400, 2)) {
		t.Error("same VPN under different ASID must miss")
	}
}

func TestInvalidate(t *testing.T) {
	tl := New(faCfg(4))
	k := key(7, 1)
	tl.Insert(k)
	if !tl.Invalidate(k) {
		t.Error("Invalidate of present key must report true")
	}
	if tl.Invalidate(k) {
		t.Error("Invalidate of absent key must report false")
	}
	if tl.Probe(k) {
		t.Error("invalidated key must miss")
	}
}

func TestReset(t *testing.T) {
	tl := New(faCfg(4))
	tl.Insert(key(1, 1))
	tl.Probe(key(1, 1))
	tl.Reset()
	if tl.Len() != 0 || tl.Stats().Probes != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestR2000Config(t *testing.T) {
	c := R2000()
	if c.Entries != 64 || c.Assoc != area.FullyAssociative {
		t.Errorf("R2000() = %+v", c)
	}
}

// Inclusion: a larger fully-associative LRU TLB never misses more often.
func TestFAInclusion(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	small := New(faCfg(16))
	big := New(faCfg(64))
	miss := func(tl *TLB, k vm.TransKey) bool {
		if tl.Probe(k) {
			return false
		}
		tl.Insert(k)
		return true
	}
	var sm, bm int
	for i := 0; i < 20000; i++ {
		k := key(uint32(rng.Intn(200)), 1)
		if miss(small, k) {
			sm++
		}
		if miss(big, k) {
			bm++
		}
	}
	if bm > sm {
		t.Errorf("inclusion violated: big TLB missed %d > small %d", bm, sm)
	}
}

// Property: Len never exceeds capacity, and a just-inserted key always
// probes as a hit.
func TestQuickCapacityAndPresence(t *testing.T) {
	f := func(seed int64, n uint16, assocExp, entExp uint8) bool {
		entries := 1 << (2 + entExp%5) // 4..64
		assoc := 1 << (assocExp % 3)   // 1..4
		if assoc > entries {
			return true
		}
		tl := New(saCfg(entries, assoc, LRU))
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n%500); i++ {
			k := key(uint32(rng.Intn(1000)), uint8(rng.Intn(3)))
			if !tl.Probe(k) {
				tl.Insert(k)
				if !tl.Contains(k) {
					return false
				}
			}
			if tl.Len() > entries {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" {
		t.Error("policy strings wrong")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(saCfg(48, 1, LRU))
}
