package tlb

import (
	"fmt"

	"onchip/internal/telemetry"
	"onchip/internal/vm"
)

// CostModel gives the software miss-handling cost in CPU cycles for each
// miss class. The defaults follow the paper: "miss penalties range from
// about 20 cycles for misses on user pages to over 400 cycles for
// kernel-space misses" on the R2000's software-managed TLB.
type CostModel struct {
	// UserMissCycles is the fast uTLB refill handler cost for a kuseg
	// page whose PTE is reachable without a nested miss.
	UserMissCycles uint64
	// KernelMissCycles is the full kernel handler cost for a kseg2 miss
	// (including page-table pages touched from the uTLB handler).
	KernelMissCycles uint64
	// OtherCycles is the service cost charged on the first touch of a
	// page: page-fault and protection processing, the "Other" category
	// of the paper's Figure 7. These misses are compulsory and no TLB
	// sizing removes them.
	OtherCycles uint64
}

// DefaultCosts returns the R2000-style cost model used throughout the
// experiments.
func DefaultCosts() CostModel {
	return CostModel{UserMissCycles: 20, KernelMissCycles: 400, OtherCycles: 300}
}

// MissClass categorizes a TLB service event.
type MissClass uint8

const (
	// UserMiss is a kuseg translation miss refilled by the uTLB handler.
	UserMiss MissClass = iota
	// KernelMiss is a kseg2 translation miss (page tables and mapped
	// kernel data), served by the general exception path.
	KernelMiss
	// OtherMiss is first-touch page-fault/protection service.
	OtherMiss
	nMissClasses
)

func (c MissClass) String() string {
	switch c {
	case UserMiss:
		return "user"
	case KernelMiss:
		return "kernel"
	case OtherMiss:
		return "other"
	default:
		return fmt.Sprintf("MissClass(%d)", uint8(c))
	}
}

// Service accumulates miss counts and handler cycles by class.
type Service struct {
	Count  [nMissClasses]uint64
	Cycles [nMissClasses]uint64
}

// TotalCycles returns the summed handler cycles across classes.
func (s Service) TotalCycles() uint64 {
	var t uint64
	for _, c := range s.Cycles {
		t += c
	}
	return t
}

// TotalMisses returns the summed miss counts across classes.
func (s Service) TotalMisses() uint64 {
	var t uint64
	for _, c := range s.Count {
		t += c
	}
	return t
}

// Seconds converts total handler cycles to seconds at clockHz.
func (s Service) Seconds(clockHz float64) float64 {
	return float64(s.TotalCycles()) / clockHz
}

// MissEvent describes one translation miss as seen by the hardware TLB;
// Tapeworm subscribes to these to drive kernel-based simulation.
type MissEvent struct {
	Key   vm.TransKey
	Class MissClass
	// FirstTouch is set when this page had never been referenced
	// before (a compulsory miss, charged OtherCycles on top of the
	// refill cost).
	FirstTouch bool
}

// Managed wraps a TLB with the R2000 software miss-handling model:
// user-segment misses run the uTLB handler and load the PTE from the
// linearly-mapped page table in kseg2, which may itself miss and charge
// the kernel cost; kseg2 misses charge the kernel cost directly;
// first-ever touches of a page additionally charge page-fault service.
type Managed struct {
	tlb     *TLB
	costs   CostModel
	service Service
	touched map[uint64]struct{} // packed keys; see pack
	onMiss  []func(MissEvent)
}

// NewManaged builds a managed TLB over configuration cfg; it panics on
// an invalid configuration. Callers holding untrusted configurations
// should use NewManagedE instead.
func NewManaged(cfg Config, costs CostModel) *Managed {
	m, err := NewManagedE(cfg, costs)
	if err != nil {
		panic(err)
	}
	return m
}

// NewManagedE builds a managed TLB over configuration cfg, returning an
// error on an invalid configuration instead of panicking.
func NewManagedE(cfg Config, costs CostModel) (*Managed, error) {
	t, err := NewE(cfg)
	if err != nil {
		return nil, err
	}
	return &Managed{
		tlb:     t,
		costs:   costs,
		touched: make(map[uint64]struct{}),
	}, nil
}

// TLB exposes the underlying simulator (Tapeworm needs Invalidate and
// Contains to maintain its subset invariant).
func (m *Managed) TLB() *TLB { return m.tlb }

// Service returns the accumulated service breakdown.
func (m *Managed) Service() Service { return m.service }

// Costs returns the cost model in use.
func (m *Managed) Costs() CostModel { return m.costs }

// OnMiss registers a hook invoked for every translation miss, including
// nested page-table misses.
func (m *Managed) OnMiss(f func(MissEvent)) { m.onMiss = append(m.onMiss, f) }

// Describe publishes the managed TLB's refill-path counters with the
// registry under prefix (e.g. "machine.tlb"): probe/miss totals from the
// hardware TLB plus per-class miss counts and handler cycles. Pull-style
// (evaluated at snapshot), so the translate hot path is untouched. Safe
// to call with a nil registry.
func (m *Managed) Describe(reg *telemetry.Registry, prefix string) {
	reg.CounterFunc(prefix+".probes", "translation probes", func() uint64 { return m.tlb.Stats().Probes })
	reg.CounterFunc(prefix+".misses", "translation misses", func() uint64 { return m.tlb.Stats().Misses })
	for class := UserMiss; class < nMissClasses; class++ {
		class := class
		reg.CounterFunc(prefix+".refills."+class.String(), "refills by miss class",
			func() uint64 { return m.service.Count[class] })
		reg.CounterFunc(prefix+".refill_cycles."+class.String(), "handler cycles by miss class",
			func() uint64 { return m.service.Cycles[class] })
	}
}

// ResetService zeroes the service counters while keeping TLB contents
// and first-touch tracking: used to discard warm-up transients before
// measuring steady-state service rates.
func (m *Managed) ResetService() { m.service = Service{} }

// Reset clears TLB contents, counters, and first-touch tracking.
func (m *Managed) Reset() {
	m.tlb.Reset()
	m.service = Service{}
	m.touched = make(map[uint64]struct{})
}

// Translate services one reference to addr by asid and returns the stall
// cycles spent in TLB miss handling (zero on a hit or for unmapped
// segments). First-touch page-fault service (OtherCycles) is recorded in
// the Service breakdown but not returned as a stall: the paper's Monster
// CPI attribution counts only TLB refill handler time (page-fault service
// is dominated by I/O and idle time, which the paper excludes), while
// the Figure 7 service-time analysis reports the "Other" category
// separately from the TLB-size-dependent misses.
func (m *Managed) Translate(addr uint32, asid uint8) uint64 {
	if !vm.Mapped(addr) {
		return 0
	}
	key := vm.KeyFor(addr, asid)
	if m.tlb.Probe(key) {
		return 0
	}

	var cycles uint64
	first := m.firstTouch(key)
	if vm.SegmentOf(addr) == vm.KUseg {
		// uTLB refill: load the PTE from the page table in kseg2.
		cycles += m.costs.UserMissCycles
		pteKey := vm.KeyFor(vm.PTEAddr(asid, vm.VPN(addr)), asid)
		if !m.tlb.Probe(pteKey) {
			// Nested kernel miss on the page-table page.
			cycles += m.costs.KernelMissCycles
			pteFirst := m.firstTouch(pteKey)
			m.record(MissEvent{Key: pteKey, Class: KernelMiss, FirstTouch: pteFirst})
			m.insert(pteKey)
		}
		m.record(MissEvent{Key: key, Class: UserMiss, FirstTouch: first})
	} else {
		cycles += m.costs.KernelMissCycles
		m.record(MissEvent{Key: key, Class: KernelMiss, FirstTouch: first})
	}
	m.insert(key)
	return cycles
}

func (m *Managed) firstTouch(key vm.TransKey) bool {
	if _, ok := m.touched[pack(key)]; ok {
		return false
	}
	m.touched[pack(key)] = struct{}{}
	return true
}

func (m *Managed) insert(key vm.TransKey) { m.tlb.Insert(key) }

func (m *Managed) record(ev MissEvent) {
	class := ev.Class
	m.service.Count[class]++
	switch class {
	case UserMiss:
		m.service.Cycles[class] += m.costs.UserMissCycles
	case KernelMiss:
		m.service.Cycles[class] += m.costs.KernelMissCycles
	}
	if ev.FirstTouch {
		m.service.Count[OtherMiss]++
		m.service.Cycles[OtherMiss] += m.costs.OtherCycles
	}
	for _, f := range m.onMiss {
		f(ev)
	}
}
