// Package tlb implements a software-managed TLB simulator in the style
// of the MIPS R2000, the platform of the paper's measurements. On the
// R2000 every TLB miss traps to a software handler, so misses have
// strongly bimodal cost: a user-segment miss runs the fast uTLB refill
// handler (~20 cycles), while a kernel-segment (kseg2) miss -- most often
// a miss on a page-table page taken from inside the uTLB handler --
// costs hundreds of cycles. The Managed type models this chain
// explicitly: a user miss loads its PTE from the linearly-mapped page
// table in kseg2, and that load can itself miss in the TLB, charging the
// kernel-miss cost and inserting the page-table page's translation.
// This mechanism, together with the extra address spaces of a
// multiple-API system, is what drives the paper's Mach TLB results.
package tlb

import (
	"fmt"

	"onchip/internal/area"
	"onchip/internal/vm"
)

// Policy selects the replacement policy.
type Policy uint8

const (
	// LRU is true least-recently-used replacement, usable in
	// trace-driven simulation where every access is visible.
	LRU Policy = iota
	// FIFO replaces in insertion order. Kernel-based (Tapeworm)
	// simulation uses FIFO because only miss events are visible, so
	// hit recency cannot be tracked; it is also close to the R2000's
	// hardware random replacement in behaviour.
	FIFO
)

func (p Policy) String() string {
	if p == FIFO {
		return "FIFO"
	}
	return "LRU"
}

// Config describes a TLB to simulate.
type Config struct {
	area.TLBConfig
	Policy Policy
}

// R2000 returns the hardware TLB configuration of the MIPS R2000 as used
// in the DECstation 3100: 64 entries, fully associative.
func R2000() Config {
	return Config{TLBConfig: area.TLBConfig{Entries: 64, Assoc: area.FullyAssociative}}
}

// Stats holds probe counters.
type Stats struct {
	Probes uint64
	Misses uint64
}

// MissRatio returns misses per probe.
func (s Stats) MissRatio() float64 {
	if s.Probes == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Probes)
}

func (s Stats) String() string {
	return fmt.Sprintf("probes=%d misses=%d ratio=%.5f", s.Probes, s.Misses, s.MissRatio())
}

// entry is one TLB slot; order within a set encodes recency (LRU) or
// insertion order (FIFO), most recent first.
type entry struct {
	key   vm.TransKey
	valid bool
}

// pack flattens a translation key into a uint64 so the residency index
// can use the runtime's fast integer-keyed map path instead of hashing
// a struct. VPN is 20 bits and ASID 8, so the packing is injective.
func pack(k vm.TransKey) uint64 { return uint64(k.VPN)<<8 | uint64(k.ASID) }

// TLB is the core simulator. It supports probe, insert with victim
// report, and invalidation -- the operations needed both for direct
// trace-driven use and for Tapeworm-style kernel-based simulation.
type TLB struct {
	cfg   Config
	sets  [][]entry
	index map[uint64]int // packed present keys -> set, for O(1) FA probes
	stats Stats
}

// New builds a TLB simulator; it panics on invalid configurations.
// Callers holding untrusted configurations should use NewE instead.
func New(cfg Config) *TLB {
	t, err := NewE(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// NewE builds a TLB simulator, returning an error on an invalid
// configuration instead of panicking.
func NewE(cfg Config) (*TLB, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("tlb: invalid config %v: %w", cfg.TLBConfig, err)
	}
	assoc := cfg.Assoc
	if assoc == area.FullyAssociative {
		assoc = cfg.Entries
	}
	nsets := cfg.Entries / assoc
	sets := make([][]entry, nsets)
	for i := range sets {
		sets[i] = make([]entry, 0, assoc)
	}
	return &TLB{cfg: cfg, sets: sets, index: make(map[uint64]int, cfg.Entries)}, nil
}

// Config returns the simulated configuration.
func (t *TLB) Config() Config { return t.cfg }

// Stats returns probe counters.
func (t *TLB) Stats() Stats { return t.stats }

// Reset clears contents and counters.
func (t *TLB) Reset() {
	for i := range t.sets {
		t.sets[i] = t.sets[i][:0]
	}
	t.index = make(map[uint64]int, t.cfg.Entries)
	t.stats = Stats{}
}

func (t *TLB) setFor(key vm.TransKey) int {
	if len(t.sets) == 1 {
		return 0
	}
	return int(key.VPN) & (len(t.sets) - 1)
}

// Probe looks key up, updating recency under LRU, and reports a hit.
func (t *TLB) Probe(key vm.TransKey) bool {
	t.stats.Probes++
	// Fast path: reference streams have strong page locality, so most
	// probes land on the one or two most recent translations of their
	// set. A depth-1 hit changes no state (the entry is already in
	// front); a depth-2 hit under LRU is a swap. Both bypass the index.
	set := t.sets[t.setFor(key)]
	if len(set) > 0 {
		if set[0].key == key {
			return true
		}
		if len(set) > 1 && set[1].key == key {
			if t.cfg.Policy == LRU {
				set[0], set[1] = set[1], set[0]
			}
			return true
		}
	}
	si, ok := t.index[pack(key)]
	if !ok {
		t.stats.Misses++
		return false
	}
	if t.cfg.Policy == LRU {
		set := t.sets[si]
		for i := range set {
			if set[i].key == key {
				e := set[i]
				copy(set[1:i+1], set[:i])
				set[0] = e
				break
			}
		}
	}
	return true
}

// Contains reports presence without updating recency or counters.
func (t *TLB) Contains(key vm.TransKey) bool {
	_, ok := t.index[pack(key)]
	return ok
}

// Insert adds key, returning the evicted victim if the set was full.
// Inserting a present key only refreshes its recency.
func (t *TLB) Insert(key vm.TransKey) (victim vm.TransKey, evicted bool) {
	si := t.setFor(key)
	if _, ok := t.index[pack(key)]; ok {
		if t.cfg.Policy == LRU {
			t.touch(si, key)
		}
		return vm.TransKey{}, false
	}
	set := t.sets[si]
	assoc := cap(set)
	if len(set) == assoc {
		victim = set[len(set)-1].key
		evicted = true
		delete(t.index, pack(victim))
		set = set[:len(set)-1]
	}
	set = append(set, entry{})
	copy(set[1:], set[:len(set)-1])
	set[0] = entry{key: key, valid: true}
	t.sets[si] = set
	t.index[pack(key)] = si
	return victim, evicted
}

func (t *TLB) touch(si int, key vm.TransKey) {
	set := t.sets[si]
	for i := range set {
		if set[i].key == key {
			e := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = e
			return
		}
	}
}

// Invalidate removes key if present, reporting whether it was.
// Tapeworm uses this to maintain the hardware-subset invariant.
func (t *TLB) Invalidate(key vm.TransKey) bool {
	si, ok := t.index[pack(key)]
	if !ok {
		return false
	}
	delete(t.index, pack(key))
	set := t.sets[si]
	for i := range set {
		if set[i].key == key {
			t.sets[si] = append(set[:i], set[i+1:]...)
			return true
		}
	}
	return true
}

// Len returns the number of valid entries currently held.
func (t *TLB) Len() int { return len(t.index) }

// Keys snapshots the currently resident translation keys (in no
// particular order). Tapeworm uses this to audit its subset invariant.
func (t *TLB) Keys() []vm.TransKey {
	keys := make([]vm.TransKey, 0, len(t.index))
	for _, set := range t.sets {
		for _, e := range set {
			keys = append(keys, e.key)
		}
	}
	return keys
}
