module onchip

go 1.22
