// Cycletime: the paper's proposed extension, as a design exercise. The
// ISCA-1994 analysis optimized CPI under an area budget and noted that
// access time should be "another dimension"; this example asks the
// question a designer would: given a target clock rate, what is the best
// on-chip memory allocation, and what does insisting on a faster clock
// cost in cycles per instruction?
package main

import (
	"fmt"

	"onchip/internal/area"
	"onchip/internal/atime"
	"onchip/internal/search"
)

func main() {
	space := search.Table5()
	perf := search.MachLike()
	am := area.Default()
	tm := atime.Default()

	fmt.Println("best allocation under 250,000 rbe at each cycle-time target")
	fmt.Println("(0.8-micron-class access times; Mach-like workload model)")
	fmt.Println()
	fmt.Printf("%-10s %-10s %-22s %-22s %-22s %s\n",
		"cycle", "clock", "TLB", "I-cache", "D-cache", "CPI")
	for _, cycleNS := range []float64{0, 18, 14, 12, 10, 9} {
		var allocs []search.Allocation
		if cycleNS == 0 {
			allocs = search.Enumerate(space, am, area.BudgetRBE, perf)
		} else {
			c := cycleNS
			allocs = search.EnumerateFiltered(space, am, area.BudgetRBE, perf,
				func(t area.TLBConfig, ic, dc area.CacheConfig) bool {
					return tm.FitsCycle(c, t, ic, dc)
				})
		}
		label, clock := "none", "-"
		if cycleNS > 0 {
			label = fmt.Sprintf("%.0f ns", cycleNS)
			clock = fmt.Sprintf("%.0f MHz", 1000/cycleNS)
		}
		if len(allocs) == 0 {
			fmt.Printf("%-10s %-10s no feasible configuration\n", label, clock)
			continue
		}
		a := allocs[0]
		fmt.Printf("%-10s %-10s %-22s %-22s %-22s %.3f\n",
			label, clock, a.TLB, a.ICache, a.DCache, a.CPI)
	}

	fmt.Println()
	fmt.Println("the CPI column prices the clock: pushing from 14 ns to 9 ns costs CPI as the")
	fmt.Println("optimizer abandons associativity and capacity -- whether the faster clock wins")
	fmt.Println("depends on cycle-time x CPI, which is exactly the product a designer minimizes")
}
