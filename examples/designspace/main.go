// Designspace: repeat the paper's Section 5.4 optimization with a custom
// area budget. The analytic performance model makes the search instant,
// so the example sweeps several budgets and shows how the optimal
// allocation changes as silicon gets cheaper -- the design-space question
// the paper's methodology was built to answer.
package main

import (
	"fmt"

	"onchip/internal/area"
	"onchip/internal/search"
)

func main() {
	space := search.Table5()
	model := search.MachLike()
	am := area.Default()

	for _, budget := range []float64{125_000, 250_000, 500_000} {
		allocs := search.Enumerate(space, am, budget, model)
		if len(allocs) == 0 {
			fmt.Printf("budget %.0f rbe: no feasible configuration\n", budget)
			continue
		}
		best := allocs[0]
		fmt.Printf("budget %7.0f rbe (%6d feasible): best CPI %.3f\n  %v\n",
			budget, len(allocs), best.CPI, best)
	}

	// The same search under a single-API (Ultrix-like) model shows the
	// paper's conclusion in reverse: with services in the kernel, less
	// of the budget needs to go to the TLB and I-cache.
	fmt.Println("\nsame budget, single-API (Ultrix-like) performance model:")
	allocs := search.Enumerate(space, am, area.BudgetRBE, search.UltrixLike())
	fmt.Printf("  %v\n", allocs[0])
}
