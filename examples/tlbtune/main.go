// Tlbtune: size a TLB with kernel-based (Tapeworm) simulation. One
// workload run prices every candidate configuration simultaneously, then
// the MQF area model attaches die cost -- reproducing the trade-off
// behind the paper's conclusion that a large set-associative TLB is the
// cheapest CPI reduction on the chip.
package main

import (
	"fmt"

	"onchip/internal/area"
	"onchip/internal/machine"
	"onchip/internal/osmodel"
	"onchip/internal/tapeworm"
	"onchip/internal/tlb"
	"onchip/internal/trace"
	"onchip/internal/workload"
)

func main() {
	spec := workload.VideoPlay()
	configs := []tlb.Config{
		{TLBConfig: area.TLBConfig{Entries: 64, Assoc: area.FullyAssociative}},
		{TLBConfig: area.TLBConfig{Entries: 128, Assoc: 4}},
		{TLBConfig: area.TLBConfig{Entries: 256, Assoc: area.FullyAssociative}},
		{TLBConfig: area.TLBConfig{Entries: 256, Assoc: 4}},
		{TLBConfig: area.TLBConfig{Entries: 512, Assoc: 8}},
	}

	hw := tlb.NewManaged(tlb.R2000(), tlb.DefaultCosts())
	tw := tapeworm.Attach(hw, configs...)
	var instrs uint64
	sink := trace.SinkFunc(func(r trace.Ref) {
		if r.Kind == trace.IFetch {
			instrs++
		}
		hw.Translate(r.Addr, r.ASID)
	})
	sys := osmodel.NewSystem(osmodel.Mach, spec)
	sys.Generate(500_000, sink) // warm up
	hw.ResetService()
	tw.ResetServices()
	instrs = 0
	sys.Generate(1_500_000, sink)

	am := area.Default()
	fmt.Printf("%s under Mach: TLB candidates by service time and die cost\n\n", spec.Name)
	fmt.Printf("%-28s %12s %12s %14s\n", "TLB", "CPI", "area (rbe)", "CPI per 10k rbe")
	for _, r := range tw.Results() {
		handler := r.Service.Cycles[tlb.UserMiss] + r.Service.Cycles[tlb.KernelMiss]
		cpi := float64(handler) / float64(instrs)
		cost := am.TLBArea(r.Config.TLBConfig)
		fmt.Printf("%-28s %12.4f %12.0f %14.4f\n", r.Config.TLBConfig.String(), cpi, cost, cpi/(cost/10_000))
	}
	fmt.Println("\n(the R2000's 64-entry TLB is the worst CPI per unit area on the list; the")
	fmt.Println(" paper's Figure 5 prices the 256-entry fully-associative and 512-entry 8-way")
	fmt.Println(" designs at about the same area, so either large TLB is the cheap upgrade)")
	_ = machine.ClockHz
}
