// Quickstart: price an on-chip memory configuration with the MQF area
// model, run a workload on it, and report cost and performance together
// -- the paper's cost/benefit loop in twenty lines.
package main

import (
	"fmt"

	"onchip/internal/area"
	"onchip/internal/cache"
	"onchip/internal/machine"
	"onchip/internal/monitor"
	"onchip/internal/osmodel"
	"onchip/internal/tlb"
	"onchip/internal/wbuf"
	"onchip/internal/workload"
)

func main() {
	// The paper's best allocation (Table 6, rank 1): a 512-entry 8-way
	// TLB, a 16-KB I-cache and an 8-KB D-cache, both 8-way with 8-word
	// lines.
	tlbCfg := area.TLBConfig{Entries: 512, Assoc: 8}
	iCfg := area.CacheConfig{CapacityBytes: 16 << 10, LineWords: 8, Assoc: 8}
	dCfg := area.CacheConfig{CapacityBytes: 8 << 10, LineWords: 8, Assoc: 8}

	m := area.Default()
	fmt.Printf("cost: TLB %.0f + I-cache %.0f + D-cache %.0f = %.0f rbe (budget %d)\n",
		m.TLBArea(tlbCfg), m.CacheArea(iCfg), m.CacheArea(dCfg),
		m.TotalArea(tlbCfg, iCfg, dCfg), area.BudgetRBE)

	// Benefit: run mpeg_play under Mach on a machine built from the
	// same configuration.
	cfg := machine.Config{
		ICache: cache.Config{CacheConfig: iCfg},
		DCache: cache.Config{CacheConfig: dCfg},
		TLB:    tlb.Config{TLBConfig: tlbCfg},
		WB:     wbuf.DECstation3100(),
	}
	row := monitor.Measure(osmodel.Mach, workload.MPEGPlay(), 1_000_000, cfg)
	fmt.Printf("benefit: %s under Mach: %s\n", row.Workload, row.Breakdown)
}
