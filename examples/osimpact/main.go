// Osimpact: the paper's Section 4 observation, live. Run the same
// workload binary under the single-API system (Ultrix) and the
// multiple-API system (Mach) on identical hardware and watch the stall
// profile shift from the D-cache toward the TLB and I-cache.
package main

import (
	"fmt"
	"os"

	"onchip/internal/machine"
	"onchip/internal/monitor"
	"onchip/internal/osmodel"
	"onchip/internal/workload"
)

func main() {
	name := "mpeg_play"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	spec, err := workload.ByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cfg := machine.DECstation3100()
	const refs = 1_500_000

	fmt.Printf("workload %s on DECstation 3100 parameters (%d refs)\n\n", spec.Name, refs)
	ult := monitor.Measure(osmodel.Ultrix, spec, refs, cfg)
	mach := monitor.Measure(osmodel.Mach, spec, refs, cfg)

	for _, r := range []monitor.Row{ult, mach} {
		fmt.Printf("%-7s %s\n", r.OS, r.Breakdown)
	}

	fmt.Println("\nwhere the time goes under Mach:")
	fmt.Printf("  task %.0f%%  kernel %.0f%%  BSD server %.0f%%  X server %.0f%%\n",
		mach.Gen.AppPct(), mach.Gen.KernelPct(), mach.Gen.BSDPct(), mach.Gen.XPct())

	dTLB := mach.Breakdown.Comp[machine.CompTLB] - ult.Breakdown.Comp[machine.CompTLB]
	dI := mach.Breakdown.Comp[machine.CompICache] - ult.Breakdown.Comp[machine.CompICache]
	fmt.Printf("\nmoving to the multiple-API system costs %.2f CPI of TLB stalls and %.2f CPI of I-cache stalls\n", dTLB, dI)
	fmt.Println("(the paper's Section 4: the longer service-invocation paths and extra address")
	fmt.Println(" spaces shift pressure onto exactly the structures a chip designer must size)")
}
